// The formulation planner: the paper's conclusion — "a MapReduce-based
// implementation must dynamically adapt the type and level of parallelism" —
// turned into a subsystem.  Given one level's workload shape and a device,
// enumerate every counting formulation the repo implements (five CPU
// backends x five simulated-GPU algorithms x a threads-per-block sweep,
// plus a shared-prefix trie variant of the block-bucketed kernel),
// score each analytically (kernels::predict_mining_time for the device,
// planner/cpu_cost_model for the host), and return a Plan: the winner, the
// full scored decision table, and the reason every loser lost.
//
// The planner is deterministic (same workload + options => same plan), never
// picks a candidate whose capability gate fails (e.g. a backend whose
// max_level is below the requested level), and records a human-readable
// rejection reason for every infeasible candidate — backend_shootout
// --validate-planner keeps its predictions honest by measuring the whole
// candidate table and reporting the planner's regret.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "planner/cpu_cost_model.hpp"
#include "planner/workload.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::planner {

enum class BackendKind {
  kCpuSerial,
  kCpuParallel,
  kCpuSharded,
  kCpuSingleScan,
  kCpuTrieScan,
  kGpuSim,
  /// Work-stealing shard engine over N devices (distrib::DistribBackend):
  /// host single-scan workers, or simulated cards when distrib_gpu is set.
  kDistrib,
};

/// The make_cpu_backend / BackendSpec name of a kind ("cpu-serial", ...,
/// "gpusim").
[[nodiscard]] std::string_view backend_kind_name(BackendKind kind);

/// One point of the candidate space: enough to both predict and construct
/// the backend it names.
struct CandidateConfig {
  BackendKind kind = BackendKind::kCpuSerial;
  /// CPU backends: resolved worker count.  kDistrib: the device/shard count.
  int threads = 1;
  /// gpusim only (kDistrib with distrib_gpu: the launch each card runs).
  kernels::Algorithm algorithm = kernels::Algorithm::kThreadTexture;
  int threads_per_block = 0;
  /// gpusim + algo5 only: bucket shared-prefix trie tokens instead of flat
  /// per-episode automata (MiningLaunchParams::trie_buckets).
  bool trie_buckets = false;
  /// kDistrib only: shards run as simulated cards instead of host workers.
  bool distrib_gpu = false;

  /// Stable display / cache key, e.g. "cpu-sharded-x8", "gpusim-algo5/t128",
  /// "gpusim-algo5-trie/t128", "distrib-x4", or "distrib-gpu-x2".
  [[nodiscard]] std::string label() const;
};

struct ScoredCandidate {
  CandidateConfig config;
  bool feasible = false;
  double predicted_ms = 0.0;
  /// Feasible: the dominant-cost note ("bound by issue", "episode-parallel
  /// map").  Infeasible: why the candidate was rejected (never empty).
  std::string reason;
  /// gpusim candidates: the full mechanism breakdown behind predicted_ms.
  gpusim::TimeBreakdown breakdown;
};

struct Plan {
  Workload workload;
  /// All candidates: feasible ones first, sorted by ascending predicted time
  /// (ties broken by label so plans are deterministic), then the rejected
  /// ones in enumeration order.
  std::vector<ScoredCandidate> table;
  /// Why the winner won (margin over the runner-up, rejection tally).
  std::string explanation;

  [[nodiscard]] const ScoredCandidate& winner() const { return table.front(); }
  [[nodiscard]] std::size_t feasible_count() const noexcept {
    std::size_t n = 0;
    for (const auto& c : table) n += c.feasible ? 1 : 0;
    return n;
  }
};

struct PlannerOptions {
  /// Card the gpusim candidates are scored (and constructed) for.
  gpusim::DeviceSpec device;
  /// CPU worker request; 0 resolves to the hardware concurrency.
  int cpu_threads = 0;
  /// threads-per-block sweep for the gpusim candidates.
  std::vector<int> tpb_sweep = {32, 64, 128, 256, 512};
  /// Device counts to score distrib (work-stealing shard) candidates at:
  /// each entry N adds "distrib-xN" (host workers, enable_cpu) and
  /// "distrib-gpu-xN" (simulated cards, enable_gpu) to the table, so the
  /// plan answers "when does 2x card beat 1x card at this level".  Empty
  /// (the default) keeps the single-device candidate space — the planner
  /// must not assume extra hardware exists unless the caller says so.
  std::vector<int> device_sweep = {};
  /// Candidate-space gates (a shootout validating only host backends turns
  /// the GPU off; both off is a precondition error in plan_level).
  bool enable_cpu = true;
  bool enable_gpu = true;
  /// Reject formulations that return approximate counts for the requested
  /// semantics (the block-level kernels' overlap-rescan approximation under
  /// expiry).  On by default: `--backend auto` must stay bit-exact with the
  /// serial reference; benchmarking harnesses may relax it.
  bool require_exact = true;
  gpusim::CostParams cost_params = {};
  CpuCostConstants cpu_constants = {};
  /// Per-loop instruction charges of the GPU workload models.  Defaults to
  /// the shipped cost_constants.hpp values; a fitted CalibrationProfile
  /// (calib/) replaces both this and cpu_constants.
  kernels::KernelCostProfile kernel_costs = {};
  /// Online-feedback multipliers applied to predicted_ms after scoring,
  /// keyed by candidate label (e.g. "cpu-sharded-x8") with the backend kind
  /// name ("cpu-sharded") as fallback.  AutoBackend maintains these from
  /// measured-vs-predicted count() ratios so long mining runs self-correct;
  /// empty (the default) leaves predictions untouched.
  std::map<std::string, double> measured_bias;

  PlannerOptions();  ///< defaults the device to the paper's GTX 280
};

/// Score the full candidate space for one level's workload.  Throws
/// gm::PreconditionError when the workload is degenerate (empty database or
/// episode set) or every candidate is infeasible.
[[nodiscard]] Plan plan_level(const Workload& workload, const PlannerOptions& options);

/// Construct the backend a candidate names (the planner's pick, typically).
[[nodiscard]] std::unique_ptr<core::CountingBackend> make_planned_backend(
    const CandidateConfig& config, const PlannerOptions& options);

/// The kernel-model spec a gpusim candidate is scored with (shared with the
/// calibration fitter, which re-predicts candidates under trial profiles).
/// `trie_buckets` carries the workload's measured prefix_compression into the
/// spec alongside the launch flag (Algorithm 5 only).
[[nodiscard]] kernels::WorkloadSpec gpu_workload_spec(const Workload& workload,
                                                      kernels::Algorithm algorithm, int tpb,
                                                      bool trie_buckets = false);

/// Render a plan as the human-readable decision table planner_explain prints.
[[nodiscard]] std::string format_plan(const Plan& plan);

}  // namespace gm::planner

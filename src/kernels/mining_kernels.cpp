#include "kernels/mining_kernels.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "common/error.hpp"
#include "core/segment_counter.hpp"

namespace gm::kernels {
namespace {

using core::EpisodeAutomaton;
using core::Symbol;
using gpusim::TexAccessKind;
using gpusim::ThreadCtx;

/// Everything a kernel thread needs, copied by value into the coroutine
/// frame (safe against the enclosing lambda's lifetime).
struct Views {
  gpusim::TextureView<Symbol> db_tex;
  gpusim::GlobalView<Symbol> episodes;      ///< charged device accesses
  std::span<const Symbol> episodes_host;    ///< zero-cost host mirror
  gpusim::GlobalView<std::uint32_t> counts;
  /// Block-level transfer tables, blocks x threads x level entries in device
  /// memory (count<<8 | exit_state per entry).
  gpusim::GlobalView<std::uint32_t> scratch;
  std::int64_t db_size = 0;
  int level = 1;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int buffer_bytes = kDefaultBufferBytes;
};

/// [begin, end) of thread `tid` when `size` symbols are split across
/// `threads` (remainder to the lowest tids — must match
/// core::chunk_boundaries).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
};

Range thread_chunk(std::int64_t size, int threads, int tid) {
  const std::int64_t base = size / threads;
  const std::int64_t extra = size % threads;
  Range r;
  r.begin = tid * base + std::min<std::int64_t>(tid, extra);
  r.end = r.begin + base + (tid < extra ? 1 : 0);
  return r;
}

std::uint32_t pack_outcome(std::uint32_t count, int exit_state) {
  return (count << 8) | static_cast<std::uint32_t>(exit_state);
}

/// Count window-crossing occurrences around absolute boundary `bound` by
/// rescanning [bound-window, bound+window) through the texture path.  An
/// occurrence is attributed to the last boundary it crosses (end must fall
/// before `next_bound`).  Mirrors core's count_overlap_rescan exactly so CPU
/// reference and kernel agree.
std::uint32_t rescan_boundary(ThreadCtx& ctx, const Views& v, std::span<const Symbol> episode,
                              std::int64_t bound, std::int64_t next_bound,
                              std::int64_t window) {
  const std::int64_t lo = std::max<std::int64_t>(0, bound - window);
  const std::int64_t hi = std::min<std::int64_t>(v.db_size, bound + window);
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t crossers = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    ctx.charge(kRescanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    ctx.charge(kAutomatonStepInstr);
    if (automaton.step(c, i) && i >= bound && i < next_bound &&
        automaton.first_match_pos() < bound) {
      ++crossers;
    }
  }
  return crossers;
}

// --------------------------------------------------------------------------
// Algorithm 1: thread-level, texture memory.
// --------------------------------------------------------------------------
gpusim::KernelTask algo1_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kBroadcast, static_cast<double>(v.db_size), /*sharing_key=*/1});

  const std::int64_t ep = ctx.global_thread();
  const std::int64_t ep_off = ep * v.level;
  const std::span<const Symbol> episode =
      v.episodes_host.subspan(static_cast<std::size_t>(ep_off),
                              static_cast<std::size_t>(v.level));

  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;
  for (std::int64_t i = 0; i < v.db_size; ++i) {
    ctx.charge(kUnbufferedScanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    // The episode symbol we wait for lives in spilled local memory and is
    // re-read every iteration (see cost_constants.hpp).
    (void)v.episodes.load(ctx, static_cast<std::size_t>(ep_off + automaton.state()));
    if (automaton.step(c, i)) ++count;
  }
  v.counts.store(ctx, static_cast<std::size_t>(ep), count);
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 2: thread-level, shared-memory buffering.
// --------------------------------------------------------------------------
gpusim::KernelTask algo2_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kCoalescedStream, static_cast<double>(v.db_size), /*sharing_key=*/2});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.global_thread();
  const std::int64_t ep_off = ep * v.level;

  // Episode staged once into frame registers.
  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < v.level; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(v.level));

  gpusim::SharedArray<Symbol> buffer(ctx, static_cast<std::size_t>(v.buffer_bytes), 0);
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;

  const std::int64_t B = v.buffer_bytes;
  for (std::int64_t base = 0; base < v.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, v.db_size - base);
    // Cooperative interleaved load: warp lanes fetch consecutive addresses.
    for (std::int64_t j = tid; j < n; j += t) {
      ctx.charge(kBufferCopyInstr);
      buffer.store(static_cast<std::size_t>(j),
                   v.db_tex.fetch(ctx, static_cast<std::size_t>(base + j)));
    }
    co_await ctx.syncthreads();
    // Every thread scans the whole buffer for its own episode.
    for (std::int64_t j = 0; j < n; ++j) {
      ctx.charge(kBufferedScanInstr);
      const Symbol c = buffer.load(static_cast<std::size_t>(j));
      if (automaton.step(c, base + j)) ++count;
    }
    co_await ctx.syncthreads();
  }
  v.counts.store(ctx, static_cast<std::size_t>(ep), count);
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 3: block-level, texture memory.
// --------------------------------------------------------------------------
gpusim::KernelTask algo3_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kStridedPerLane, static_cast<double>(v.db_size), /*sharing_key=*/0});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.block_idx();
  const std::int64_t ep_off = ep * v.level;
  const int L = v.level;

  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < L; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(L));

  const Range chunk = thread_chunk(v.db_size, t, tid);
  // Transfer table for this block lives in device memory.
  const std::size_t scratch_base =
      static_cast<std::size_t>(ep) * static_cast<std::size_t>(t) * static_cast<std::size_t>(L);

  // Level-1 occurrences are single symbols and can never span a chunk
  // boundary, so the transfer-function machinery is skipped (one automaton,
  // plain sum reduce) — likewise in expiry mode, where boundary rescans
  // replace composition.
  if (!v.expiry.enabled() && L > 1) {
    // Transfer-function scan: one automaton per entry state, single fetch
    // per symbol.
    std::vector<EpisodeAutomaton> automata;
    std::vector<std::uint32_t> found(static_cast<std::size_t>(L), 0);
    automata.reserve(static_cast<std::size_t>(L));
    for (int a = 0; a < L; ++a) {
      automata.emplace_back(episode, v.semantics, v.expiry);
      automata.back().restore(a, chunk.begin - 1);
    }
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      ctx.charge(kBlockScanInstr);
      const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
      (void)v.episodes.load(ctx,
                            static_cast<std::size_t>(ep_off + automata[0].state()));
      for (int a = 0; a < L; ++a) {
        ctx.charge(kAutomatonStepInstr);
        if (automata[static_cast<std::size_t>(a)].step(c, i)) {
          ++found[static_cast<std::size_t>(a)];
        }
      }
    }
    for (int a = 0; a < L; ++a) {
      ctx.charge(1);
      v.scratch.store(ctx,
                      scratch_base + static_cast<std::size_t>(tid) * L +
                          static_cast<std::size_t>(a),
                      pack_outcome(found[static_cast<std::size_t>(a)],
                                   automata[static_cast<std::size_t>(a)].state()));
    }
    co_await ctx.syncthreads();
    if (tid == 0) {
      std::uint32_t total = 0;
      int state = 0;
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(state));
        total += o >> 8;
        state = static_cast<int>(o & 0xFF);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), total);
    }
    co_return;
  }

  // Simple mode (expiry or level 1): fresh scan per chunk + (expiry only)
  // boundary-window rescan.
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;
  for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
    ctx.charge(kBlockScanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    (void)v.episodes.load(ctx, static_cast<std::size_t>(ep_off + automaton.state()));
    ctx.charge(kAutomatonStepInstr);
    if (automaton.step(c, i)) ++count;
  }
  if (v.expiry.enabled() && chunk.end < v.db_size) {
    const std::int64_t next_bound = thread_chunk(v.db_size, t, tid + 1).end;
    count += rescan_boundary(ctx, v, episode, chunk.end, next_bound, v.expiry.window);
  }
  ctx.charge(1);
  v.scratch.store(ctx, scratch_base + static_cast<std::size_t>(tid) * L, count);
  co_await ctx.syncthreads();
  if (tid == 0) {
    std::uint32_t total = 0;
    for (int th = 0; th < t; ++th) {
      ctx.charge(kFoldStepInstr);
      total += v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L);
    }
    v.counts.store(ctx, static_cast<std::size_t>(ep), total);
  }
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 4: block-level, shared-memory buffering.
// --------------------------------------------------------------------------
gpusim::KernelTask algo4_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kCoalescedStream, static_cast<double>(v.db_size), /*sharing_key=*/4});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.block_idx();
  const std::int64_t ep_off = ep * v.level;
  const int L = v.level;

  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < L; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(L));

  gpusim::SharedArray<Symbol> buffer(ctx, static_cast<std::size_t>(v.buffer_bytes), 0);
  const std::size_t scratch_base =
      static_cast<std::size_t>(ep) * static_cast<std::size_t>(t) * static_cast<std::size_t>(L);

  // Simple mode: expiry (rescan-based spanning fix) or level 1 (occurrences
  // cannot span a slice).
  const bool simple = v.expiry.enabled() || L == 1;
  const std::int64_t B = v.buffer_bytes;

  // Composition fold state (thread 0) / simple-mode partial count.
  std::uint32_t fold_total = 0;
  int fold_state = 0;
  EpisodeAutomaton simple_automaton(episode, v.semantics, v.expiry);
  std::uint32_t simple_count = 0;
  bool first_iteration = true;

  for (std::int64_t base = 0; base < v.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, v.db_size - base);

    // Between iterations, thread 0 folds the previous iteration's transfer
    // table while the other threads proceed into this load phase (the
    // regions are disjoint; the barrier below orders the phases).
    if (!simple && !first_iteration && tid == 0) {
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(fold_state));
        fold_total += o >> 8;
        fold_state = static_cast<int>(o & 0xFF);
      }
    }
    first_iteration = false;

    for (std::int64_t j = tid; j < n; j += t) {
      ctx.charge(kBufferCopyInstr);
      buffer.store(static_cast<std::size_t>(j),
                   v.db_tex.fetch(ctx, static_cast<std::size_t>(base + j)));
    }
    co_await ctx.syncthreads();

    const Range slice = thread_chunk(n, t, tid);
    if (!simple) {
      std::vector<EpisodeAutomaton> automata;
      std::vector<std::uint32_t> found(static_cast<std::size_t>(L), 0);
      automata.reserve(static_cast<std::size_t>(L));
      for (int a = 0; a < L; ++a) {
        automata.emplace_back(episode, v.semantics, v.expiry);
        automata.back().restore(a, base + slice.begin - 1);
      }
      for (std::int64_t j = slice.begin; j < slice.end; ++j) {
        ctx.charge(kBlockScanInstr);
        const Symbol c = buffer.load(static_cast<std::size_t>(j));
        (void)v.episodes.load(ctx,
                              static_cast<std::size_t>(ep_off + automata[0].state()));
        for (int a = 0; a < L; ++a) {
          ctx.charge(kAutomatonStepInstr);
          if (automata[static_cast<std::size_t>(a)].step(c, base + j)) {
            ++found[static_cast<std::size_t>(a)];
          }
        }
      }
      for (int a = 0; a < L; ++a) {
        ctx.charge(1);
        v.scratch.store(ctx,
                        scratch_base + static_cast<std::size_t>(tid) * L +
                            static_cast<std::size_t>(a),
                        pack_outcome(found[static_cast<std::size_t>(a)],
                                     automata[static_cast<std::size_t>(a)].state()));
      }
    } else {
      for (std::int64_t j = slice.begin; j < slice.end; ++j) {
        ctx.charge(kBlockScanInstr);
        const Symbol c = buffer.load(static_cast<std::size_t>(j));
        (void)v.episodes.load(
            ctx, static_cast<std::size_t>(ep_off + simple_automaton.state()));
        ctx.charge(kAutomatonStepInstr);
        if (simple_automaton.step(c, base + j)) ++simple_count;
      }
      // Fresh automaton per slice: abandon carried progress to mirror the
      // independent-chunk map phase, then (expiry only) patch the slice's
      // end boundary.
      simple_automaton.reset();
      const std::int64_t bound = base + slice.end;
      if (v.expiry.enabled() && bound < v.db_size) {
        std::int64_t next_bound;
        if (tid < t - 1) {
          next_bound = base + thread_chunk(n, t, tid + 1).end;
        } else {
          // Iteration edge: the next boundary is the first slice end of the
          // following staged buffer.
          const std::int64_t n2 = std::min<std::int64_t>(B, v.db_size - (base + n));
          next_bound = base + n + thread_chunk(n2, t, 0).end;
        }
        simple_count += rescan_boundary(ctx, v, episode, bound, next_bound, v.expiry.window);
      }
    }
    co_await ctx.syncthreads();
  }

  if (!simple) {
    if (tid == 0) {
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(fold_state));
        fold_total += o >> 8;
        fold_state = static_cast<int>(o & 0xFF);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), fold_total);
    }
  } else {
    ctx.charge(1);
    v.scratch.store(ctx, scratch_base + static_cast<std::size_t>(tid) * L, simple_count);
    co_await ctx.syncthreads();
    if (tid == 0) {
      std::uint32_t total = 0;
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        total += v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), total);
    }
  }
  co_return;
}

}  // namespace

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kThreadTexture: return "algo1-thread-texture";
    case Algorithm::kThreadBuffered: return "algo2-thread-buffered";
    case Algorithm::kBlockTexture: return "algo3-block-texture";
    case Algorithm::kBlockBuffered: return "algo4-block-buffered";
  }
  return "?";
}

int algorithm_number(Algorithm algorithm) { return static_cast<int>(algorithm); }

bool is_block_level(Algorithm algorithm) {
  return algorithm == Algorithm::kBlockTexture || algorithm == Algorithm::kBlockBuffered;
}

bool is_buffered(Algorithm algorithm) {
  return algorithm == Algorithm::kThreadBuffered || algorithm == Algorithm::kBlockBuffered;
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kThreadTexture, Algorithm::kThreadBuffered, Algorithm::kBlockTexture,
      Algorithm::kBlockBuffered};
  return algorithms;
}

LaunchGeometry launch_geometry(Algorithm algorithm, std::int64_t episode_count, int level,
                               int threads_per_block, int buffer_bytes) {
  gm::expects(episode_count > 0, "need at least one episode");
  gm::expects(threads_per_block > 0, "need at least one thread per block");
  gm::expects(level >= 1 && level <= kMaxLevel, "level outside kernel support");

  LaunchGeometry geo;
  if (is_block_level(algorithm)) {
    geo.blocks = episode_count;
    geo.padded_episodes = episode_count;
    // Transfer tables live in device memory; shared memory holds only the
    // staging buffer (Algorithm 4).
    geo.shared_mem_per_block = is_buffered(algorithm) ? buffer_bytes : 0;
  } else {
    geo.blocks = (episode_count + threads_per_block - 1) / threads_per_block;
    geo.padded_episodes = geo.blocks * threads_per_block;
    geo.shared_mem_per_block = is_buffered(algorithm) ? buffer_bytes : 0;
  }
  return geo;
}

DeviceProblem::DeviceProblem(const core::Sequence& database,
                             std::span<const core::Episode> episodes,
                             const MiningLaunchParams& params)
    : params_(params),
      packed_(core::pack_episodes(
          episodes, launch_geometry(params.algorithm,
                                    static_cast<std::int64_t>(episodes.size()),
                                    episodes.empty() ? 1 : episodes.front().level(),
                                    params.threads_per_block, params.buffer_bytes)
                        .padded_episodes)),
      db_(std::span<const Symbol>(database)),
      episodes_(std::span<const Symbol>(packed_.symbols)),
      counts_(static_cast<std::size_t>(packed_.padded_count)),
      scratch_(is_block_level(params.algorithm)
                   ? static_cast<std::size_t>(packed_.episode_count) *
                         static_cast<std::size_t>(params.threads_per_block) *
                         static_cast<std::size_t>(packed_.level)
                   : 1),
      db_size_(static_cast<std::int64_t>(database.size())) {
  gm::expects(!database.empty(), "database must be non-empty");
  for (const Symbol s : database) {
    gm::expects(s < core::PackedEpisodes::kSentinel,
                "database symbol collides with the padding sentinel");
  }
  const LaunchGeometry geo =
      launch_geometry(params.algorithm, packed_.episode_count, packed_.level,
                      params.threads_per_block, params.buffer_bytes);
  config_.grid = gpusim::Dim3(static_cast<int>(geo.blocks));
  config_.block = gpusim::Dim3(params.threads_per_block);
  config_.shared_mem_per_block = geo.shared_mem_per_block;
  config_.registers_per_thread = kRegistersPerThread;
  if (is_block_level(params.algorithm)) {
    gm::expects(params.threads_per_block <= db_size_,
                "block-level kernels need at least one symbol per thread");
  }
  if (is_buffered(params.algorithm)) {
    gm::expects(params.buffer_bytes > 0, "buffered kernels need a buffer");
  }
}

gpusim::KernelFn DeviceProblem::kernel() {
  Views v;
  v.db_tex = db_.texture();
  v.episodes = episodes_.global();
  v.episodes_host = packed_.symbols;
  v.counts = counts_.global();
  v.scratch = scratch_.global();
  v.db_size = db_size_;
  v.level = packed_.level;
  v.semantics = params_.semantics;
  v.expiry = params_.expiry;
  v.buffer_bytes = params_.buffer_bytes;

  switch (params_.algorithm) {
    case Algorithm::kThreadTexture:
      return [v](ThreadCtx& ctx) { return algo1_kernel(ctx, v); };
    case Algorithm::kThreadBuffered:
      return [v](ThreadCtx& ctx) { return algo2_kernel(ctx, v); };
    case Algorithm::kBlockTexture:
      return [v](ThreadCtx& ctx) { return algo3_kernel(ctx, v); };
    case Algorithm::kBlockBuffered:
      return [v](ThreadCtx& ctx) { return algo4_kernel(ctx, v); };
  }
  gm::raise_invariant("unhandled algorithm");
}

std::vector<std::int64_t> DeviceProblem::extract_counts() const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(packed_.episode_count));
  const auto host = counts_.host();
  for (std::int64_t i = 0; i < packed_.episode_count; ++i) {
    out.push_back(static_cast<std::int64_t>(host[static_cast<std::size_t>(i)]));
  }
  return out;
}

MiningRun run_mining_kernel(const gpusim::Engine& engine, const core::Sequence& database,
                            std::span<const core::Episode> episodes,
                            const MiningLaunchParams& params) {
  DeviceProblem problem(database, episodes, params);
  const gpusim::KernelFn kernel = problem.kernel();
  MiningRun run;
  run.launch = engine.launch(problem.launch_config(), kernel);
  run.counts = problem.extract_counts();
  return run;
}

}  // namespace gm::kernels

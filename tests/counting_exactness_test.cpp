// Randomized bit-exactness suite for the arena-backed SoA counting engines.
//
// The flat single-scan engine and the shared-prefix trie engine are both
// re-groupings of the same N serial automata, so on every input they must
// equal the serial reference element-for-element.  This suite sweeps the
// shapes the SoA rewrite actually changed behaviour-relevant machinery for:
// semantics x expiry window (never / shorter-than-episode / mid / longer-
// than-stream) x alphabet size (dense collisions through sparse buckets) x
// episode pools with and without shared prefixes (trie token regrouping).
// It also pins the batched dispatch tier (`advance_batch`) to the
// symbol-at-a-time path and checkpoints captured mid-stream — while expiry
// deadlines are pending — across both engines and both restore directions.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/episode.hpp"
#include "core/episode_trie.hpp"
#include "core/multi_counter.hpp"
#include "core/scan_checkpoint.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "random_episode_util.hpp"

namespace gm::core {
namespace {

using test::random_episodes;

// Episodes whose first (level-1) symbols come from a small shared pool, the
// shape that maximizes trie token sharing (mirrors the bench's prefix-pool
// shapes).
std::vector<Episode> prefix_pool_episodes(Rng& rng, int alphabet_size, int count,
                                          int level, int pool) {
  std::vector<std::vector<Symbol>> prefixes;
  for (int p = 0; p < pool; ++p) {
    std::vector<Symbol> prefix;
    for (int i = 0; i + 1 < level; ++i) {
      prefix.push_back(
          static_cast<Symbol>(rng.below(static_cast<std::uint64_t>(alphabet_size))));
    }
    prefixes.push_back(std::move(prefix));
  }
  std::vector<Episode> episodes;
  for (int e = 0; e < count; ++e) {
    std::vector<Symbol> symbols = prefixes[rng.below(prefixes.size())];
    symbols.push_back(
        static_cast<Symbol>(rng.below(static_cast<std::uint64_t>(alphabet_size))));
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

TEST(CountingExactness, SoAEnginesMatchSerialAcrossShapes) {
  Rng rng(0x50A2009);
  for (const int alphabet : {4, 64, 250}) {
    for (const std::int64_t window :
         {std::int64_t{0}, std::int64_t{3}, std::int64_t{17}, std::int64_t{4001}}) {
      for (const Semantics semantics :
           {Semantics::kNonOverlappedSubsequence, Semantics::kContiguousRestart}) {
        for (const int pool : {0, 8}) {
          const auto db = data::uniform_database(Alphabet(alphabet), 1200, rng());
          const auto episodes =
              pool > 0 ? prefix_pool_episodes(rng, alphabet, 24, 4, pool)
                       : random_episodes(rng, alphabet, 24, 5);
          const ExpiryPolicy expiry{window};
          const auto expected = count_all(episodes, db, semantics, expiry);
          EXPECT_EQ(count_all_single_scan(episodes, db, semantics, expiry), expected)
              << "flat alphabet=" << alphabet << " window=" << window
              << " semantics=" << to_string(semantics) << " pool=" << pool;
          EXPECT_EQ(count_all_trie_scan(episodes, db, semantics, expiry), expected)
              << "trie alphabet=" << alphabet << " window=" << window
              << " semantics=" << to_string(semantics) << " pool=" << pool;
        }
      }
    }
  }
}

TEST(CountingExactness, BatchDispatchEqualsSymbolAtATime) {
  Rng rng(0xBA7C4);
  for (const Semantics semantics :
       {Semantics::kNonOverlappedSubsequence, Semantics::kContiguousRestart}) {
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{9}}) {
      const auto db = data::uniform_database(Alphabet(12), 900, rng());
      const auto episodes = random_episodes(rng, 12, 20, 4);
      const ExpiryPolicy expiry{window};

      MultiCounter flat_single(episodes, semantics, expiry);
      MultiCounter flat_batched(episodes, semantics, expiry);
      TrieCounter trie_single(episodes, semantics, expiry,
                              static_cast<std::int64_t>(db.size()));
      TrieCounter trie_batched(episodes, semantics, expiry,
                               static_cast<std::int64_t>(db.size()));

      // Feed identical streams: one engine symbol-at-a-time, its twin in
      // random-size batches.  Progress must agree at every batch boundary.
      std::size_t fed = 0;
      while (fed < db.size()) {
        const std::size_t batch =
            std::min(db.size() - fed, 1 + rng.below(96));
        const auto span = std::span(db).subspan(fed, batch);
        for (std::size_t i = 0; i < batch; ++i) {
          flat_single.advance(span[i], static_cast<std::int64_t>(fed + i));
          trie_single.advance(span[i], static_cast<std::int64_t>(fed + i));
        }
        flat_batched.advance_batch(span, static_cast<std::int64_t>(fed));
        trie_batched.advance_batch(span, static_cast<std::int64_t>(fed));
        fed += batch;
        ASSERT_EQ(flat_batched.progress(), flat_single.progress()) << "at " << fed;
        ASSERT_EQ(trie_batched.progress(), trie_single.progress()) << "at " << fed;
      }
      EXPECT_EQ(flat_batched.counts(), count_all(episodes, db, semantics, expiry));
      EXPECT_EQ(trie_batched.counts(), count_all(episodes, db, semantics, expiry));
    }
  }
}

TEST(CountingExactness, MidExpiryCheckpointRoundTripsAndCrossRestores) {
  Rng rng(0xC4EC4);
  for (int trial = 0; trial < 6; ++trial) {
    const int alphabet = trial % 2 == 0 ? 6 : 64;
    const auto db = data::uniform_database(Alphabet(alphabet), 1000, rng());
    const auto episodes = trial % 3 == 0
                              ? prefix_pool_episodes(rng, alphabet, 16, 4, 4)
                              : random_episodes(rng, alphabet, 16, 5);
    // A window short enough that deadlines are always pending mid-stream,
    // long enough that multi-symbol matches stay in flight across the pause.
    const ExpiryPolicy expiry{17};
    const Semantics semantics = Semantics::kNonOverlappedSubsequence;
    const auto expected = count_all(episodes, db, semantics, expiry);
    const std::size_t pause = 400 + rng.below(200);

    const auto prefix = std::span(db).first(pause);
    const auto tail = std::span(db).subspan(pause);

    std::vector<ScanCheckpoint> captures;
    for (const ScanEngine source : {ScanEngine::kSingleScan, ScanEngine::kTrie}) {
      StreamScan scan(episodes, semantics, expiry, source);
      scan.feed(prefix);
      captures.push_back(scan.checkpoint());
    }
    // Captures are engine-agnostic: both engines paused mid-window must
    // describe the identical per-episode configuration.  first_pos is a
    // don't-care for idle automata (the engines park it differently), so
    // normalize it to zero before comparing.
    const auto normalized = [](std::vector<EpisodeProgress> progress) {
      for (EpisodeProgress& p : progress) {
        if (p.state == 0) p.first_pos = 0;
      }
      return progress;
    };
    ASSERT_EQ(normalized(captures[0].progress), normalized(captures[1].progress))
        << "trial " << trial;

    for (const ScanCheckpoint& capture : captures) {
      for (const ScanEngine dest : {ScanEngine::kSingleScan, ScanEngine::kTrie}) {
        StreamScan resumed(capture, dest);
        resumed.feed(tail);
        EXPECT_EQ(resumed.counts(), expected)
            << "trial " << trial << " dest " << static_cast<int>(dest);
      }
    }
  }
}

}  // namespace
}  // namespace gm::core

// Writer/reader contract of bench_support/json: the writer emits only valid
// JSON (including for adversarial strings full of control characters and
// backslashes), the reader accepts exactly standard JSON, and everything the
// writer produces round-trips losslessly through the reader.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bench_support/json.hpp"
#include "common/error.hpp"

namespace gm::bench {
namespace {

TEST(JsonWriter, EscapesControlCharactersAndBackslashes) {
  JsonWriter json;
  json.begin_object();
  json.field("path", "C:\\bench\\out");
  json.field("note", std::string("line1\nline2\ttabbed\r") + '\x01' + "\b\f end");
  json.field("quote", "say \"hi\"");
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"path":"C:\\bench\\out",)"
            R"("note":"line1\nline2\ttabbed\r\u0001\b\f end",)"
            R"("quote":"say \"hi\""})");
}

TEST(JsonReader, ParsesScalarsArraysAndObjects) {
  const JsonValue doc = parse_json(
      R"({"name":"shootout","regret":1.25,"levels":[1,2,3],)"
      R"("gate":true,"json":null,"nested":{"deep":[{"k":-2e3}]}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "shootout");
  EXPECT_DOUBLE_EQ(doc.at("regret").as_double(), 1.25);
  ASSERT_TRUE(doc.at("levels").is_array());
  ASSERT_EQ(doc.at("levels").array.size(), 3u);
  EXPECT_EQ(doc.at("levels").array[1].as_int64(), 2);
  EXPECT_TRUE(doc.at("gate").as_bool());
  EXPECT_TRUE(doc.at("json").is_null());
  EXPECT_DOUBLE_EQ(doc.at("nested").at("deep").array[0].at("k").as_double(), -2000.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonReader, DecodesStringEscapes) {
  const JsonValue doc = parse_json(R"("a\"b\\c\/d\n\t\r\b\f\u0041\u00e9\ud83d\ude00")");
  EXPECT_EQ(doc.as_string(),
            "a\"b\\c/d\n\t\r\b\f"
            "A\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonReader, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",                    // empty
           "{",                   // unclosed object
           "[1,]",                // trailing comma
           "{\"a\" 1}",           // missing colon
           "{\"a\":1} x",         // trailing garbage
           "'single'",            // wrong quotes
           "\"unterminated",      // unterminated string
           "\"bad \\q escape\"",  // unknown escape
           "\"\\ud83d alone\"",   // unpaired surrogate
           "01",                  // leading zero garbage via trailing chars
           "nul",                 // truncated literal
           "\"raw\ncontrol\"",    // unescaped control character
       }) {
    EXPECT_THROW((void)parse_json(bad), gm::PreconditionError) << "input: " << bad;
  }
}

TEST(JsonReader, TypedAccessorsRejectMismatches) {
  const JsonValue doc = parse_json(R"({"n":1.5,"s":"x","huge":1e300,"neg":-1e300})");
  EXPECT_THROW((void)doc.at("n").as_string(), gm::PreconditionError);
  EXPECT_THROW((void)doc.at("s").as_double(), gm::PreconditionError);
  EXPECT_THROW((void)doc.at("n").as_int64(), gm::PreconditionError);  // non-integer
  // Out of int64 range must throw, not invoke the UB double->int cast.
  EXPECT_THROW((void)doc.at("huge").as_int64(), gm::PreconditionError);
  EXPECT_THROW((void)doc.at("neg").as_int64(), gm::PreconditionError);
  EXPECT_THROW((void)doc.at("n").at("k"), gm::PreconditionError);  // not an object
  EXPECT_THROW((void)doc.at("missing"), gm::PreconditionError);
}

/// Re-serialize a parsed tree with the writer, for round-trip checks.
void rewrite(const JsonValue& value, JsonWriter& json) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: json.value(std::numeric_limits<double>::quiet_NaN()); break;
    case JsonValue::Kind::kBool: json.value(value.boolean); break;
    case JsonValue::Kind::kNumber: json.value(value.number); break;
    case JsonValue::Kind::kString: json.value(value.string); break;
    case JsonValue::Kind::kArray:
      json.begin_array();
      for (const auto& item : value.array) rewrite(item, json);
      json.end_array();
      break;
    case JsonValue::Kind::kObject:
      json.begin_object();
      for (const auto& [key, member] : value.object) {
        json.key(key);
        rewrite(member, json);
      }
      json.end_object();
      break;
  }
}

TEST(JsonRoundTrip, WriterOutputSurvivesParseAndRewrite) {
  // Build a document exercising every writer feature (escapes, nesting,
  // numeric forms, null via non-finite), then parse -> rewrite -> parse and
  // require the second pass to be byte-identical: the writer is canonical,
  // so a lossless reader makes rewrite a fixed point.
  JsonWriter first;
  first.begin_object();
  first.field("driver", "round\ntrip \"quoted\" \\ path\x01\b\f");
  first.field("count", static_cast<std::int64_t>(-42));
  first.field("ratio", 0.0625);
  first.field("tiny", 1.25e-7);
  first.field("gate", false);
  first.field("nan_becomes_null", std::numeric_limits<double>::quiet_NaN());
  first.key("table").begin_array();
  for (int i = 0; i < 3; ++i) {
    first.begin_object();
    first.field("level", i);
    first.field("label", "algo" + std::to_string(i) + "\t/t" + std::to_string(32 << i));
    first.end_object();
  }
  first.end_array();
  first.key("empty_array").begin_array().end_array();
  first.key("empty_object").begin_object().end_object();
  first.end_object();

  const JsonValue parsed = parse_json(first.str());
  JsonWriter second;
  rewrite(parsed, second);
  EXPECT_EQ(second.str(), first.str());

  const JsonValue reparsed = parse_json(second.str());
  EXPECT_EQ(reparsed.at("driver").as_string(), "round\ntrip \"quoted\" \\ path\x01\b\f");
  EXPECT_EQ(reparsed.at("count").as_int64(), -42);
  EXPECT_TRUE(reparsed.at("nan_becomes_null").is_null());
  EXPECT_EQ(reparsed.at("table").array.size(), 3u);
}

TEST(JsonRoundTrip, DoublesSurviveExactly) {
  // The writer emits the shortest round-trippable representation, so every
  // value the BENCH artifacts carry (times in ms, ratios, fitted calibration
  // constants) must come back double-equal.
  for (const double v : {1.1, 2.0, 3.0, 12.0, 80.0, 0.05, 1e-6, 123456.789, 9.87654321e8,
                         0.1 + 0.2, 1.0 / 3.0}) {
    JsonWriter json;
    json.begin_array().value(v).end_array();
    const JsonValue parsed = parse_json(json.str());
    EXPECT_DOUBLE_EQ(parsed.array[0].as_double(), v);
  }
}

}  // namespace
}  // namespace gm::bench

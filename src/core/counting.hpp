// Counting backend interface: the paper's "counting step" (the expensive map
// phase of Algorithm 1) behind a uniform API so the miner can run on the
// serial CPU, a multi-threaded CPU, or any of the four simulated-GPU
// algorithms interchangeably.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::core {

struct CountRequest {
  std::span<const Symbol> database;
  /// Views the caller's episode list (no per-level deep copy); the caller
  /// keeps it alive for the duration of count().  Beware: a span binds to an
  /// rvalue vector without warning — never assign a temporary (e.g. a direct
  /// all_distinct_episodes() result) or count() reads freed memory.
  std::span<const Episode> episodes;
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry = {};
};

struct CountResult {
  /// counts[i] = occurrences of episodes[i].
  std::vector<std::int64_t> counts;
  /// Wall-clock of the backend itself, in milliseconds (host work).
  double host_ms = 0.0;
  /// For simulated-GPU backends: the predicted device kernel time from the
  /// cost model; 0 for CPU backends.
  double simulated_kernel_ms = 0.0;
};

class CountingBackend {
 public:
  virtual ~CountingBackend() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual CountResult count(const CountRequest& request) = 0;

  /// Largest episode level this backend can count, or 0 for unbounded.  The
  /// miner checks this before issuing a request so a capped backend (the GPU
  /// kernels' frame-register episode staging stops at kernels::kMaxLevel)
  /// surfaces a reportable gm::Error instead of failing mid-launch.
  [[nodiscard]] virtual int max_level() const { return 0; }
};

}  // namespace gm::core

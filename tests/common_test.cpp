// Tests for the shared utilities: error machinery, RNG, bench reporting.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "bench_support/cli_args.hpp"
#include "bench_support/report.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace gm {
namespace {

TEST(Error, TypedHierarchy) {
  EXPECT_THROW(raise_precondition("x"), PreconditionError);
  EXPECT_THROW(raise_invariant("x"), InvariantError);
  EXPECT_THROW(raise_device("x"), DeviceError);
  try {
    raise_device("bad launch");
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad launch"), std::string::npos);
    EXPECT_NE(what.find("device error"), std::string::npos);
  }
}

TEST(Error, StableCodesAcrossTheHierarchy) {
  // Machine-readable codes: the service layer serializes these into
  // responses, so each error family must carry its documented code.
  try {
    raise_precondition("x");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
  }
  try {
    raise_precondition("x", ErrorCode::kInvalidConfig);
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidConfig);
  }
  try {
    raise_invariant("x");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvariant);
  }
  try {
    raise_device("x");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDevice);
  }
  EXPECT_EQ(Error("plain").code(), ErrorCode::kUnknown);
}

TEST(Error, CodeNamesAreStableSnakeCase) {
  EXPECT_EQ(error_code_name(ErrorCode::kUsage), "usage");
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidConfig), "invalid_config");
  EXPECT_EQ(error_code_name(ErrorCode::kAdmissionRejected), "admission_rejected");
  EXPECT_EQ(error_code_name(ErrorCode::kQueueFull), "queue_full");
  EXPECT_EQ(error_code_name(ErrorCode::kCapability), "capability");
  EXPECT_EQ(error_code_name(ErrorCode::kShutdown), "shutdown");
  EXPECT_EQ(error_code_name(ErrorCode::kUnknown), "unknown");
}

TEST(Error, UsageErrorCarriesUsageCode) {
  try {
    (void)bench::parse_int("--tpb", "x64", 1, 512);
    FAIL() << "parse_int should reject non-numeric input";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUsage);
    EXPECT_NE(std::string(e.what()).find("--tpb"), std::string::npos);
  }
}

TEST(Error, ExpectsAndEnsurePassThrough) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_NO_THROW(ensure(true, "fine"));
  EXPECT_THROW(expects(false, "nope"), PreconditionError);
  EXPECT_THROW(ensure(false, "nope"), InvariantError);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c;
  }
  EXPECT_NE(Rng(123)(), Rng(124)());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  std::array<int, 7> histogram{};
  for (int i = 0; i < 70'000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++histogram[v];
  }
  for (const int count : histogram) EXPECT_NEAR(count, 10'000, 600);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.between(3, 3), 3);
}

TEST(Rng, UnitAndChance) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int heads = 0;
  for (int i = 0; i < 10'000; ++i) heads += rng.chance(0.25);
  EXPECT_NEAR(heads, 2500, 250);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(1);
  Rng child = parent.split();
  EXPECT_NE(parent(), child());
}

TEST(Report, SeriesTableFormats) {
  bench::SeriesTable table("demo", "x", {1, 2});
  table.add({"a", {1.5, 2.5}});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("1.500"), std::string::npos);

  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("x,a"), std::string::npos);
  EXPECT_THROW(table.add({"bad", {1.0}}), PreconditionError);
}

TEST(Report, BestOfFindsMinimum) {
  const auto best = bench::best_of({16, 32, 64}, {3.0, 1.0, 2.0});
  EXPECT_EQ(best.x, 32);
  EXPECT_DOUBLE_EQ(best.value, 1.0);
  EXPECT_THROW((void)bench::best_of({}, {}), PreconditionError);
}

TEST(Report, PaperSweepShape) {
  const auto sweep = bench::paper_thread_sweep();
  EXPECT_EQ(sweep.front(), 16);
  EXPECT_EQ(sweep.back(), 512);
  for (std::size_t i = 1; i < sweep.size(); ++i) EXPECT_GT(sweep[i], sweep[i - 1]);
}

}  // namespace
}  // namespace gm

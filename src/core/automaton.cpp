#include "core/automaton.hpp"

namespace gm::core {

std::string to_string(Semantics semantics) {
  switch (semantics) {
    case Semantics::kNonOverlappedSubsequence: return "non-overlapped-subsequence";
    case Semantics::kContiguousRestart: return "contiguous-restart";
  }
  return "?";
}

}  // namespace gm::core

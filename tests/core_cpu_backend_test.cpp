// CPU counting backend tests: randomized bit-exact agreement of the sharded
// and single-scan backends with the serial reference across semantics,
// expiry windows, and shard counts, plus regressions for the
// episode-parallel backend (thread-count narrowing, private accumulation).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/cpu_backend.hpp"
#include "data/generators.hpp"
#include "random_episode_util.hpp"

namespace gm::core {
namespace {

using test::random_episodes;

TEST(ShardedCpuBackend, BitIdenticalToSerialAcrossShardCountsAndSemantics) {
  Rng rng(42);
  const Alphabet alphabet(9);
  const auto db = data::markov_database(alphabet, 4000, 0.55, 7);
  const auto episodes = random_episodes(rng, 9, 30, 4);

  SerialCpuBackend serial;
  const Semantics all_semantics[] = {Semantics::kNonOverlappedSubsequence,
                                     Semantics::kContiguousRestart};
  for (const Semantics semantics : all_semantics) {
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{5}}) {
      CountRequest request;
      request.database = db;
      request.episodes = episodes;
      request.semantics = semantics;
      request.expiry = ExpiryPolicy{window};
      const auto expected = serial.count(request).counts;
      for (const int shards : {1, 2, 3, 5, 8, 16}) {
        ShardedCpuBackend sharded(shards);
        ASSERT_EQ(sharded.count(request).counts, expected)
            << "shards " << shards << " semantics " << to_string(semantics) << " window "
            << window;
      }
    }
  }
}

TEST(ShardedCpuBackend, MoreShardsThanSymbolsStillExact) {
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({1, 0})};
  const Sequence db = {0, 1, 0, 1, 1, 0};
  CountRequest request;
  request.database = db;
  request.episodes = episodes;
  SerialCpuBackend serial;
  ShardedCpuBackend sharded(16);  // shards outnumber the 6 symbols
  EXPECT_EQ(sharded.count(request).counts, serial.count(request).counts);
}

TEST(SingleScanCpuBackend, AgreesWithSerialBackend) {
  Rng rng(4242);
  const Alphabet alphabet(14);
  const auto db = data::uniform_database(alphabet, 5000, 3);
  const auto episodes = random_episodes(rng, 14, 50, 3);
  CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.expiry = ExpiryPolicy{6};
  SerialCpuBackend serial;
  SingleScanCpuBackend single_scan;
  EXPECT_EQ(single_scan.count(request).counts, serial.count(request).counts);
}

// Regression: the worker count once narrowed size_t episode counts through
// std::min<int>; with more threads than episodes every thread must still
// claim valid work and the merge must fill every slot exactly once.
TEST(ParallelCpuBackend, MoreThreadsThanEpisodes) {
  const std::vector<Episode> episodes = {Episode({0}), Episode({1}), Episode({0, 1})};
  const Sequence db = {0, 1, 0, 1, 0};
  CountRequest request;
  request.database = db;
  request.episodes = episodes;
  SerialCpuBackend serial;
  ParallelCpuBackend parallel(16);
  EXPECT_EQ(parallel.count(request).counts, serial.count(request).counts);
}

TEST(ParallelCpuBackend, ManyEpisodesMergeCompletely) {
  Rng rng(9);
  const Alphabet alphabet(6);
  const auto db = data::uniform_database(alphabet, 2000, 1);
  const auto episodes = random_episodes(rng, 6, 97, 3);  // not a multiple of threads
  CountRequest request;
  request.database = db;
  request.episodes = episodes;
  SerialCpuBackend serial;
  ParallelCpuBackend parallel(5);
  EXPECT_EQ(parallel.count(request).counts, serial.count(request).counts);
}

TEST(CpuBackends, EmptyEpisodeListYieldsEmptyCounts) {
  const Sequence db = {0, 1, 2};
  CountRequest request;
  request.database = db;
  ParallelCpuBackend parallel(4);
  ShardedCpuBackend sharded(4);
  SingleScanCpuBackend single_scan;
  EXPECT_TRUE(parallel.count(request).counts.empty());
  EXPECT_TRUE(sharded.count(request).counts.empty());
  EXPECT_TRUE(single_scan.count(request).counts.empty());
}

TEST(MakeCpuBackend, ResolvesNamesAndAliases) {
  EXPECT_EQ(make_cpu_backend("cpu-serial")->name(), "cpu-serial");
  EXPECT_EQ(make_cpu_backend("serial")->name(), "cpu-serial");
  EXPECT_EQ(make_cpu_backend("cpu-parallel", 3)->name(), "cpu-parallel-x3");
  EXPECT_EQ(make_cpu_backend("sharded", 2)->name(), "cpu-sharded-x2");
  EXPECT_EQ(make_cpu_backend("single-scan")->name(), "cpu-single-scan");
  EXPECT_EQ(make_cpu_backend("gpusim"), nullptr);
  EXPECT_EQ(make_cpu_backend("nope"), nullptr);
}

}  // namespace
}  // namespace gm::core

// Shared configuration of the paper-reproduction benches: the evaluation
// workload (393,019 letters, episode levels 1-3) and one-call helpers that
// predict a mining kernel's time on a card via the analytic workload model.
// Backend construction lives in service/backend_factory.hpp (gm::service).
#pragma once

#include <cstdint>

#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::bench {

/// Episode counts of the paper's levels over the 26-letter alphabet.
[[nodiscard]] std::int64_t paper_episode_count(int level);

/// Predicted kernel time (ms) for one paper configuration.
[[nodiscard]] double paper_time_ms(const gpusim::DeviceSpec& device,
                                   kernels::Algorithm algorithm, int level,
                                   int threads_per_block,
                                   const gpusim::CostModel& model = gpusim::CostModel{});

/// Same, returning the full mechanism breakdown.
[[nodiscard]] gpusim::TimeBreakdown paper_breakdown(const gpusim::DeviceSpec& device,
                                                    kernels::Algorithm algorithm, int level,
                                                    int threads_per_block,
                                                    const gpusim::CostModel& model =
                                                        gpusim::CostModel{});

}  // namespace gm::bench

#include "core/segment_counter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gm::core {

std::string to_string(SpanningFix fix) {
  switch (fix) {
    case SpanningFix::kNone: return "none";
    case SpanningFix::kStateComposition: return "state-composition";
    case SpanningFix::kOverlapRescan: return "overlap-rescan";
  }
  return "?";
}

SegmentOutcome scan_segment(std::span<const Symbol> episode, Semantics semantics,
                            ExpiryPolicy expiry, std::span<const Symbol> database,
                            std::int64_t begin, std::int64_t end, int entry_state,
                            std::int64_t entry_first_pos) {
  gm::expects(begin >= 0 && end <= static_cast<std::int64_t>(database.size()) && begin <= end,
              "segment range out of bounds");
  gm::expects(entry_state >= 0 && entry_state < static_cast<int>(episode.size()),
              "entry state out of range");
  EpisodeAutomaton automaton(episode, semantics, expiry);
  automaton.restore(entry_state, entry_first_pos);
  SegmentOutcome out;
  for (std::int64_t i = begin; i < end; ++i) {
    if (automaton.step(database[static_cast<std::size_t>(i)], i)) ++out.count;
  }
  out.exit_state = automaton.state();
  out.first_match_pos = automaton.first_match_pos();
  return out;
}

SegmentTransfer segment_transfer(std::span<const Symbol> episode, Semantics semantics,
                                 ExpiryPolicy expiry, std::span<const Symbol> database,
                                 std::int64_t begin, std::int64_t end) {
  SegmentTransfer transfer;
  const int level = static_cast<int>(episode.size());
  transfer.by_entry_state.reserve(static_cast<std::size_t>(level));
  for (int s = 0; s < level; ++s) {
    // A nonzero entry state carries its first-match position; the natural
    // choice for a transfer function evaluated blind is "just before the
    // chunk", which composition fixes up below for the expiry-free case.
    // With expiry enabled the transfer function is position-dependent and
    // the composition path re-scans (see count_chunked).
    transfer.by_entry_state.push_back(
        scan_segment(episode, semantics, expiry, database, begin, end, s,
                     s == 0 ? 0 : begin - 1));
  }
  return transfer;
}

std::vector<std::int64_t> chunk_boundaries(std::int64_t size, int chunks) {
  gm::expects(chunks >= 1, "need at least one chunk");
  std::vector<std::int64_t> bounds;
  bounds.reserve(static_cast<std::size_t>(chunks) + 1);
  const std::int64_t base = size / chunks;
  const std::int64_t extra = size % chunks;
  std::int64_t pos = 0;
  bounds.push_back(0);
  for (int c = 0; c < chunks; ++c) {
    pos += base + (c < extra ? 1 : 0);
    bounds.push_back(pos);
  }
  gm::ensure(bounds.back() == size, "chunk boundaries must cover the database");
  return bounds;
}

namespace {

std::int64_t count_state_composition(const Episode& episode, std::span<const Symbol> database,
                                     const std::vector<std::int64_t>& bounds,
                                     Semantics semantics, ExpiryPolicy expiry) {
  const auto symbols = episode.symbols();
  const int chunks = static_cast<int>(bounds.size()) - 1;

  if (!expiry.enabled()) {
    // Map phase (parallelizable): transfer function per chunk.
    std::vector<SegmentTransfer> transfers;
    transfers.reserve(static_cast<std::size_t>(chunks));
    for (int c = 0; c < chunks; ++c) {
      transfers.push_back(segment_transfer(symbols, semantics, expiry, database,
                                           bounds[static_cast<std::size_t>(c)],
                                           bounds[static_cast<std::size_t>(c) + 1]));
    }
    // Fold phase (cheap, sequential): thread the exit state through.
    std::int64_t count = 0;
    int state = 0;
    for (const auto& t : transfers) {
      const auto& o = t.by_entry_state[static_cast<std::size_t>(state)];
      count += o.count;
      state = o.exit_state;
    }
    return count;
  }

  // With expiry the automaton behaviour depends on absolute positions, so a
  // blind per-chunk transfer function is not well-defined for entry states
  // carrying an old first-match position.  The exact fold re-scans each chunk
  // once with the true entry (still one pass over the data overall; only the
  // map phase loses its independence).
  std::int64_t count = 0;
  int state = 0;
  std::int64_t first_pos = 0;
  for (int c = 0; c < chunks; ++c) {
    const auto o = scan_segment(symbols, semantics, expiry, database,
                                bounds[static_cast<std::size_t>(c)],
                                bounds[static_cast<std::size_t>(c) + 1], state, first_pos);
    count += o.count;
    state = o.exit_state;
    first_pos = o.first_match_pos;
  }
  return count;
}

std::int64_t count_overlap_rescan(const Episode& episode, std::span<const Symbol> database,
                                  const std::vector<std::int64_t>& bounds, Semantics semantics,
                                  ExpiryPolicy expiry, std::int64_t window) {
  const auto symbols = episode.symbols();
  const auto size = static_cast<std::int64_t>(database.size());
  const int chunks = static_cast<int>(bounds.size()) - 1;

  // Independent per-chunk counts (the map phase).
  std::int64_t count = 0;
  for (int c = 0; c < chunks; ++c) {
    count += scan_segment(symbols, semantics, expiry, database,
                          bounds[static_cast<std::size_t>(c)],
                          bounds[static_cast<std::size_t>(c) + 1], 0, 0)
                 .count;
  }

  // Boundary patch: an occurrence crossing several boundaries is attributed
  // only to the last one it crosses, so overlapping windows never
  // double-count.
  for (int c = 1; c < chunks; ++c) {
    count += count_boundary_crossers(symbols, semantics, expiry, database,
                                     bounds[static_cast<std::size_t>(c)],
                                     bounds[static_cast<std::size_t>(c) + 1], window);
  }
  (void)size;
  return count;
}

}  // namespace

std::int64_t fold_cold_scans(std::span<const Symbol> episode, Semantics semantics,
                             ExpiryPolicy expiry, std::span<const Symbol> database,
                             std::span<const std::int64_t> bounds,
                             std::span<const SegmentOutcome> cold,
                             std::int64_t* rescanned_symbols) {
  gm::expects(!bounds.empty() && bounds.front() == 0, "boundary list must cover the database");
  return fold_cold_scans(episode, semantics, expiry, database, /*base=*/0, bounds, cold,
                         /*entry_state=*/0, /*entry_first_pos=*/0, /*exit=*/nullptr,
                         rescanned_symbols);
}

std::int64_t fold_cold_scans(std::span<const Symbol> episode, Semantics semantics,
                             ExpiryPolicy expiry, std::span<const Symbol> events,
                             std::int64_t base, std::span<const std::int64_t> bounds,
                             std::span<const SegmentOutcome> cold, int entry_state,
                             std::int64_t entry_first_pos, SegmentOutcome* exit,
                             std::int64_t* rescanned_symbols) {
  gm::expects(bounds.size() >= 2 && bounds.front() == base &&
                  bounds.back() == base + static_cast<std::int64_t>(events.size()),
              "boundary list must cover the event window");
  gm::expects(cold.size() + 1 == bounds.size(), "need one cold outcome per chunk");
  gm::expects(entry_state >= 0 && entry_state < static_cast<int>(episode.size()),
              "entry state out of range");

  std::int64_t total = 0;
  std::int64_t rescanned = 0;
  int state = entry_state;
  std::int64_t first_pos = entry_first_pos;
  // One automaton pair for the whole fold, re-armed per boundary rescan via
  // restore()/reset() — chunks that need no replay (state 0 entry) construct
  // nothing at all.
  EpisodeAutomaton truth(episode, semantics, expiry);
  EpisodeAutomaton twin(episode, semantics, expiry);
  for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
    if (state == 0) {
      total += cold[c].count;
      state = cold[c].exit_state;
      first_pos = cold[c].first_match_pos;
      continue;
    }
    // Lockstep replay: the true automaton (restored) and a cold twin step
    // together; once they agree the cold scan's remainder is the truth.
    truth.restore(state, first_pos);
    twin.reset();
    std::int64_t true_count = 0;
    std::int64_t twin_count = 0;
    bool converged = false;
    for (std::int64_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      const Symbol s = events[static_cast<std::size_t>(i - base)];
      if (truth.step(s, i)) ++true_count;
      if (twin.step(s, i)) ++twin_count;
      ++rescanned;
      if (truth.state() == twin.state() &&
          (truth.state() == 0 || !expiry.enabled() ||
           truth.first_match_pos() == twin.first_match_pos())) {
        converged = true;
        break;
      }
    }
    if (converged) {
      total += true_count + (cold[c].count - twin_count);
      state = cold[c].exit_state;
      first_pos = cold[c].first_match_pos;
    } else {
      total += true_count;
      state = truth.state();
      first_pos = truth.first_match_pos();
    }
  }
  if (rescanned_symbols != nullptr) *rescanned_symbols = rescanned;
  if (exit != nullptr) *exit = {total, state, first_pos};
  return total;
}

std::int64_t count_boundary_crossers(std::span<const Symbol> episode, Semantics semantics,
                                     ExpiryPolicy expiry, std::span<const Symbol> database,
                                     std::int64_t bound, std::int64_t next_bound,
                                     std::int64_t window) {
  gm::expects(window > 0, "rescan window must be positive");
  const auto size = static_cast<std::int64_t>(database.size());
  const std::int64_t lo = std::max<std::int64_t>(0, bound - window);
  const std::int64_t hi = std::min<std::int64_t>(size, bound + window);
  EpisodeAutomaton automaton(episode, semantics, expiry);
  std::int64_t crossers = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    if (automaton.step(database[static_cast<std::size_t>(i)], i)) {
      // The accepted occurrence started at the automaton's recorded first
      // position and ended at i; same-side occurrences belong to the chunk
      // scans, later-boundary crossers to later boundaries.
      const std::int64_t start = automaton.first_match_pos();
      if (i >= bound && i < next_bound && start < bound) ++crossers;
    }
  }
  return crossers;
}

std::vector<std::int64_t> buffered_slice_boundaries(std::int64_t size,
                                                    std::int64_t buffer_symbols, int threads) {
  gm::expects(buffer_symbols >= 1, "buffer must hold at least one symbol");
  gm::expects(threads >= 1, "need at least one thread");
  std::vector<std::int64_t> bounds{0};
  for (std::int64_t base = 0; base < size; base += buffer_symbols) {
    const std::int64_t n = std::min<std::int64_t>(buffer_symbols, size - base);
    const auto inner = chunk_boundaries(n, threads);
    for (std::size_t i = 1; i < inner.size(); ++i) bounds.push_back(base + inner[i]);
  }
  if (bounds.size() == 1) bounds.push_back(size);
  return bounds;
}

std::int64_t count_with_boundaries(const Episode& episode, std::span<const Symbol> database,
                                   const std::vector<std::int64_t>& bounds, Semantics semantics,
                                   ExpiryPolicy expiry, SpanningFix fix,
                                   std::int64_t overlap_window) {
  gm::expects(!episode.empty(), "cannot count an empty episode");
  gm::expects(bounds.size() >= 2 && bounds.front() == 0 &&
                  bounds.back() == static_cast<std::int64_t>(database.size()),
              "boundary list must cover the database");

  switch (fix) {
    case SpanningFix::kNone: {
      std::int64_t count = 0;
      for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
        count += scan_segment(episode.symbols(), semantics, expiry, database, bounds[c],
                              bounds[c + 1], 0, 0)
                     .count;
      }
      return count;
    }
    case SpanningFix::kStateComposition:
      return count_state_composition(episode, database, bounds, semantics, expiry);
    case SpanningFix::kOverlapRescan: {
      std::int64_t window = overlap_window;
      if (window <= 0) {
        window = expiry.enabled() ? expiry.window : 2 * episode.level();
      }
      return count_overlap_rescan(episode, database, bounds, semantics, expiry, window);
    }
  }
  gm::raise_invariant("unhandled SpanningFix");
}

std::int64_t count_chunked(const Episode& episode, std::span<const Symbol> database, int chunks,
                           Semantics semantics, ExpiryPolicy expiry, SpanningFix fix,
                           std::int64_t overlap_window) {
  gm::expects(chunks >= 1, "need at least one chunk");
  const auto bounds = chunk_boundaries(static_cast<std::int64_t>(database.size()), chunks);
  return count_with_boundaries(episode, database, bounds, semantics, expiry, fix,
                               overlap_window);
}

}  // namespace gm::core

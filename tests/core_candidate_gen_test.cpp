// Candidate generation / elimination tests, incl. the paper's Table 1 sizes.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/candidate_gen.hpp"

namespace gm::core {
namespace {

const Alphabet kAbc = Alphabet::english_uppercase();

TEST(EpisodeSpace, PaperTable1Sizes) {
  // Level 1: 26, level 2: 650, level 3: 15,600 (paper section 5).
  EXPECT_EQ(episode_space_size(26, 1), 26u);
  EXPECT_EQ(episode_space_size(26, 2), 650u);
  EXPECT_EQ(episode_space_size(26, 3), 15'600u);
  EXPECT_EQ(episode_space_size(26, 4), 358'800u);
}

TEST(EpisodeSpace, GeneralFormula) {
  // N! / (N-L)!
  EXPECT_EQ(episode_space_size(4, 4), 24u);
  EXPECT_EQ(episode_space_size(4, 5), 0u);  // longer than alphabet
  EXPECT_EQ(episode_space_size(1, 1), 1u);
}

TEST(EpisodeSpace, OverflowDetected) {
  EXPECT_THROW((void)episode_space_size(255, 60), gm::PreconditionError);
}

TEST(AllDistinctEpisodes, MatchesFormulaAndIsDistinct) {
  for (int level = 1; level <= 3; ++level) {
    const auto episodes = all_distinct_episodes(Alphabet(5), level);
    EXPECT_EQ(episodes.size(), episode_space_size(5, level));
    for (const auto& e : episodes) {
      EXPECT_EQ(e.level(), level);
      EXPECT_TRUE(e.has_distinct_symbols());
    }
    // All unique.
    auto sorted = episodes;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(AllDistinctEpisodes, LexicographicOrder) {
  const auto episodes = all_distinct_episodes(Alphabet(3), 2);
  ASSERT_EQ(episodes.size(), 6u);
  EXPECT_EQ(episodes[0], Episode::from_text(kAbc, "AB"));
  EXPECT_EQ(episodes[1], Episode::from_text(kAbc, "AC"));
  EXPECT_EQ(episodes[2], Episode::from_text(kAbc, "BA"));
  EXPECT_EQ(episodes[5], Episode::from_text(kAbc, "CB"));
}

TEST(Level1Candidates, OnePerSymbol) {
  EXPECT_EQ(level1_candidates(kAbc).size(), 26u);
  EXPECT_EQ(level1_candidates(Alphabet(7)).size(), 7u);
}

TEST(GenerateCandidates, Level1ToLevel2) {
  const std::vector<Episode> frequent = {Episode::from_text(kAbc, "A"),
                                         Episode::from_text(kAbc, "B")};
  auto candidates = generate_candidates(frequent);
  // AA, AB, BA, BB — repeats allowed in the general model.
  EXPECT_EQ(candidates.size(), 4u);
}

TEST(GenerateCandidates, JoinRequiresOverlap) {
  // <A,B> and <B,C> join into <A,B,C>; <A,B> and <C,D> do not join.
  const std::vector<Episode> frequent = {Episode::from_text(kAbc, "AB"),
                                         Episode::from_text(kAbc, "BC")};
  auto candidates = generate_candidates(frequent, /*prune=*/false);
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        Episode::from_text(kAbc, "ABC")) != candidates.end());
  for (const auto& c : candidates) EXPECT_EQ(c.level(), 3);
}

TEST(GenerateCandidates, PruneRemovesUnsupportedSubEpisodes) {
  // <A,B,C> requires <A,C> frequent as well; without it the candidate dies.
  const std::vector<Episode> frequent = {Episode::from_text(kAbc, "AB"),
                                         Episode::from_text(kAbc, "BC")};
  auto pruned = generate_candidates(frequent, /*prune=*/true);
  EXPECT_TRUE(std::find(pruned.begin(), pruned.end(), Episode::from_text(kAbc, "ABC")) ==
              pruned.end());

  const std::vector<Episode> closed = {Episode::from_text(kAbc, "AB"),
                                       Episode::from_text(kAbc, "BC"),
                                       Episode::from_text(kAbc, "AC")};
  auto kept = generate_candidates(closed, /*prune=*/true);
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), Episode::from_text(kAbc, "ABC")) !=
              kept.end());
}

TEST(GenerateCandidates, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(generate_candidates({}).empty());
}

TEST(GenerateCandidates, EmitsLexicographicPrefixSortedOrder) {
  // The shared-prefix trie builds in one linear pass only over sorted
  // candidates, so the join guarantees the order — even when the frequent
  // set arrives scrambled.
  const std::vector<Episode> scrambled = {
      Episode::from_text(kAbc, "CA"), Episode::from_text(kAbc, "AB"),
      Episode::from_text(kAbc, "BC"), Episode::from_text(kAbc, "AC")};
  for (const bool prune : {false, true}) {
    const auto candidates = generate_candidates(scrambled, prune);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end())) << "prune=" << prune;
  }

  const std::vector<Episode> level1 = {Episode::from_text(kAbc, "C"),
                                       Episode::from_text(kAbc, "A"),
                                       Episode::from_text(kAbc, "B")};
  const auto pairs = generate_candidates(level1, /*prune=*/false);
  ASSERT_EQ(pairs.size(), 9u);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(pairs.front(), Episode::from_text(kAbc, "AA"));
  EXPECT_EQ(pairs.back(), Episode::from_text(kAbc, "CC"));
}

TEST(EliminateInfrequent, ThresholdIsStrict) {
  const std::vector<Episode> eps = {Episode::from_text(kAbc, "A"),
                                    Episode::from_text(kAbc, "B")};
  // Support must be strictly greater than alpha (paper Algorithm 1).
  const auto keep = eliminate_infrequent(eps, {10, 5}, 100, 0.05);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 0u);
}

TEST(EliminateInfrequent, ReturnsIndicesInInputOrder) {
  const std::vector<Episode> eps = {
      Episode::from_text(kAbc, "A"), Episode::from_text(kAbc, "B"),
      Episode::from_text(kAbc, "C"), Episode::from_text(kAbc, "D")};
  const auto keep = eliminate_infrequent(eps, {9, 1, 7, 5}, 100, 0.02);
  EXPECT_EQ(keep, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(EliminateInfrequent, SizeMismatchRejected) {
  const std::vector<Episode> eps = {Episode::from_text(kAbc, "A")};
  EXPECT_THROW((void)eliminate_infrequent(eps, {1, 2}, 10, 0.0), gm::PreconditionError);
}

}  // namespace
}  // namespace gm::core
